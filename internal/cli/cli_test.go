package cli

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestUsagefWraps(t *testing.T) {
	err := Usagef("bad %s", "value")
	if !errors.Is(err, ErrUsage) {
		t.Fatal("Usagef must wrap ErrUsage")
	}
	if !strings.Contains(err.Error(), "bad value") {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyValidatesWorkers(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := RegisterCorrelator(fs)
	if err := fs.Parse([]string{"-workers", "-1"}); err != nil {
		t.Fatal(err)
	}
	var opts core.Options
	if _, err := c.Apply(&opts); !errors.Is(err, ErrUsage) {
		t.Fatalf("err = %v, want ErrUsage", err)
	}
}

func TestApplyValidatesSealAfter(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := RegisterCorrelator(fs)
	if err := fs.Parse([]string{"-sealafter", "not-a-duration"}); err != nil {
		t.Fatal(err)
	}
	var opts core.Options
	if _, err := c.Apply(&opts); !errors.Is(err, ErrUsage) {
		t.Fatalf("err = %v, want ErrUsage", err)
	}
}

func TestApplyInstallsOptions(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c := RegisterCorrelator(fs)
	args := []string{
		"-workers", "1",
		"-sealafter", "50ms,db1=500ms",
		"-export", "otlp=" + filepath.Join(dir, "spans.ndjson") + ",dot=" + filepath.Join(dir, "dots") + ",dump=" + filepath.Join(dir, "dump.txt"),
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	var opts core.Options
	ex, err := c.Apply(&opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Workers != 1 {
		t.Fatalf("workers = %d", opts.Workers)
	}
	if opts.SealAfter != 50*time.Millisecond || opts.SealAfterByHost["db1"] != 500*time.Millisecond {
		t.Fatalf("sealafter = %v / %v", opts.SealAfter, opts.SealAfterByHost)
	}
	if len(opts.Sinks) != 3 || !ex.Active() {
		t.Fatalf("sinks = %d, active = %v", len(opts.Sinks), ex.Active())
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	// Files exist (empty, nothing consumed).
	if _, err := os.Stat(filepath.Join(dir, "spans.ndjson")); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "dots")); err != nil || !fi.IsDir() {
		t.Fatalf("dots dir: %v", err)
	}
	if s := ex.Summary(); !strings.Contains(s, "OTLP-JSON") || !strings.Contains(s, ".dot files") {
		t.Fatalf("summary = %q", s)
	}
}

func TestParseExportsRejects(t *testing.T) {
	for _, spec := range []string{"bogus=/tmp/x", "otlp", "=dest", "otlp="} {
		if _, err := ParseExports(spec); !errors.Is(err, ErrUsage) {
			t.Fatalf("spec %q: err = %v, want ErrUsage", spec, err)
		}
	}
	ex, err := ParseExports("  ")
	if err != nil || ex.Active() {
		t.Fatalf("empty spec: %v active=%v", err, ex.Active())
	}
}

func TestValidateHeartbeat(t *testing.T) {
	if err := ValidateHeartbeat(-time.Second); !errors.Is(err, ErrUsage) {
		t.Fatalf("err = %v", err)
	}
	if err := ValidateHeartbeat(0); err != nil {
		t.Fatal(err)
	}
}

package cag

import (
	"strings"
	"testing"
	"time"
)

func TestToDOT(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	dot := ToDOT(g, "request 1")
	for _, want := range []string{
		"digraph cag", "request 1",
		"style=solid", "style=dashed", // both relation kinds
		"BEGIN", "END",
		"v0 -> v1", // root's context edge
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// One node line per vertex.
	if got := strings.Count(dot, "[label="); got != g.Len() {
		t.Fatalf("node count = %d, want %d", got, g.Len())
	}
}

func TestTimelineLanesAndMarks(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	tl := Timeline(g, 60)
	// Three entities => three lanes.
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 4 { // header + 3 lanes
		t.Fatalf("timeline lines = %d:\n%s", len(lines), tl)
	}
	for _, c := range []string{"B", "S", "R", "E"} {
		if !strings.Contains(tl, c) {
			t.Fatalf("timeline missing %s marks:\n%s", c, tl)
		}
	}
	if !strings.Contains(tl, "web1/httpd") {
		t.Fatalf("lane label missing:\n%s", tl)
	}
}

func TestTimelineEmptyAndDegenerate(t *testing.T) {
	if Timeline(&Graph{}, 80) != "(empty)\n" {
		t.Fatal("empty graph rendering")
	}
	// Single-instant graph (span zero) must not divide by zero.
	g := buildThreeTier(t, time.Second, 2)
	for _, v := range g.Vertices() {
		v.Timestamp = time.Second
	}
	out := Timeline(g, 50)
	if !strings.Contains(out, "span") {
		t.Fatalf("degenerate timeline:\n%s", out)
	}
}

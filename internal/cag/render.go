package cag

import (
	"fmt"
	"strings"
	"time"
)

// ToDOT renders the CAG in Graphviz DOT format, one node per activity
// vertex, solid edges for adjacent context relations and dashed edges for
// message relations — the visual convention of the paper's Fig. 1.
func ToDOT(g *Graph, title string) string {
	var b strings.Builder
	b.WriteString("digraph cag {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontsize=10, fontname=\"monospace\"];\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q; labelloc=t;\n", title)
	}
	base := time.Duration(0)
	if g.Len() > 0 {
		base = g.Vertex(0).Timestamp
	}
	for i, v := range g.vertices {
		fmt.Fprintf(&b, "  v%d [label=\"%s\\n%s/%s %d:%d\\n+%s  %dB\"];\n",
			i, v.Type, v.Ctx.Host, v.Ctx.Program, v.Ctx.PID, v.Ctx.TID,
			(v.Timestamp - base).Round(time.Microsecond), v.Size)
	}
	for i, v := range g.vertices {
		if p := v.ctxParent; p != nil {
			fmt.Fprintf(&b, "  v%d -> v%d [style=solid, color=red];\n", p.index, i)
		}
		if p := v.msgParent; p != nil {
			fmt.Fprintf(&b, "  v%d -> v%d [style=dashed, color=blue];\n", p.index, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Timeline renders the CAG as an ASCII swim-lane diagram: one lane per
// execution entity, activities placed proportionally to their timestamps.
// Cross-node times are raw local timestamps, so skew shows up visually —
// which is often the first thing an operator wants to see.
func Timeline(g *Graph, width int) string {
	if g.Len() == 0 {
		return "(empty)\n"
	}
	if width < 40 {
		width = 80
	}
	minT, maxT := g.vertices[0].Timestamp, g.vertices[0].Timestamp
	var lanes []string
	laneOf := make(map[string]int)
	for _, v := range g.vertices {
		if v.Timestamp < minT {
			minT = v.Timestamp
		}
		if v.Timestamp > maxT {
			maxT = v.Timestamp
		}
		key := v.Ctx.String()
		if _, ok := laneOf[key]; !ok {
			laneOf[key] = len(lanes)
			lanes = append(lanes, key)
		}
	}
	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	labelW := 0
	for _, l := range lanes {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	chart := make([][]byte, len(lanes))
	for i := range chart {
		chart[i] = []byte(strings.Repeat("·", width))
	}
	mark := func(v *Vertex) {
		lane := laneOf[v.Ctx.String()]
		pos := int(float64(v.Timestamp-minT) / float64(span) * float64(width-1))
		var c byte
		switch v.Type {
		case 1: // Begin
			c = 'B'
		case 2: // Send
			c = 'S'
		case 3: // End
			c = 'E'
		case 4: // Receive
			c = 'R'
		default:
			c = '?'
		}
		chart[lane][pos] = c
	}
	for _, v := range g.vertices {
		mark(v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "span %v (B=begin S=send R=receive E=end; raw local clocks)\n",
		span.Round(time.Microsecond))
	for i, l := range lanes {
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, l, chart[i])
	}
	return b.String()
}

package cag

import (
	"fmt"
	"sort"
	"time"
)

// CriticalPath returns the chain of vertices from the BEGIN root to the END
// vertex along which the request's latency accrues. Walking backwards from
// END, a RECEIVE is attributed to its *message* parent (the cross-node hop
// that delivered the data), and every other vertex to its context parent.
// For the multi-tier request/reply patterns the paper studies this chain
// telescopes exactly: summing its segment latencies reproduces
// t(END) − t(BEGIN).
//
// For an unfinished graph the walk starts at the last inserted vertex.
func CriticalPath(g *Graph) []*Vertex {
	if g.Len() == 0 {
		return nil
	}
	cur := g.end
	if cur == nil {
		cur = g.vertices[len(g.vertices)-1]
	}
	var rev []*Vertex
	for cur != nil {
		rev = append(rev, cur)
		if cur.msgParent != nil {
			cur = cur.msgParent
		} else {
			cur = cur.ctxParent
		}
	}
	// Reverse into root-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Segment is one hop of the critical path with its latency attribution
// category. Categories follow the paper's naming: a context segment inside
// program P is "P2P" (e.g. httpd2httpd = time P spent computing between two
// of its own activities); a message segment from program P to program Q is
// "P2Q" (e.g. httpd2java = transmission plus receive-side queueing of the
// hop). Cross-node segments include clock skew, which §3.2 acknowledges is
// not remedied.
type Segment struct {
	Category string
	Kind     EdgeKind
	From     *Vertex
	To       *Vertex
	Latency  time.Duration
}

// CategoryName builds the paper's component label for a hop.
func CategoryName(from, to *Vertex) string {
	return from.Ctx.Program + "2" + to.Ctx.Program
}

// Breakdown decomposes the critical path into consecutive segments.
func Breakdown(g *Graph) []Segment {
	path := CriticalPath(g)
	if len(path) < 2 {
		return nil
	}
	segs := make([]Segment, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		from, to := path[i-1], path[i]
		kind := ContextEdge
		if to.msgParent == from {
			kind = MessageEdge
		}
		segs = append(segs, Segment{
			Category: CategoryName(from, to),
			Kind:     kind,
			From:     from,
			To:       to,
			Latency:  to.Timestamp - from.Timestamp,
		})
	}
	return segs
}

// ComponentLatencies sums critical-path segment latencies per category for
// one graph. Negative cross-node segments (possible under clock skew) are
// included as-is: the per-category sums still telescope to the accurate
// end-to-end latency.
func ComponentLatencies(g *Graph) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range Breakdown(g) {
		out[s.Category] += s.Latency
	}
	return out
}

// AveragePath aggregates n isomorphic CAGs into an average causal path
// (§3.2): per-category mean latencies plus the mean end-to-end latency.
type AveragePath struct {
	Signature string
	Name      string
	Count     int
	// Mean end-to-end latency across the aggregated CAGs.
	MeanLatency time.Duration
	// Mean per-component latency, keyed by category name.
	Components map[string]time.Duration
}

// Aggregate computes the average causal path of a set of isomorphic CAGs.
// It returns an error if the set is empty or the members are not mutually
// isomorphic (aggregating across patterns would average unlike vertices).
func Aggregate(graphs []*Graph) (*AveragePath, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("cag: aggregate of zero graphs")
	}
	sig := Signature(graphs[0])
	sums := make(map[string]time.Duration)
	var total time.Duration
	for _, g := range graphs {
		if Signature(g) != sig {
			return nil, fmt.Errorf("cag: aggregate over non-isomorphic graphs")
		}
		for cat, d := range ComponentLatencies(g) {
			sums[cat] += d
		}
		total += g.Latency()
	}
	n := time.Duration(len(graphs))
	avg := &AveragePath{
		Signature:   sig,
		Name:        PatternName(graphs[0]),
		Count:       len(graphs),
		MeanLatency: total / n,
		Components:  make(map[string]time.Duration, len(sums)),
	}
	for cat, d := range sums {
		avg.Components[cat] = d / n
	}
	return avg, nil
}

// Percentages converts the average path's component latencies into latency
// percentages of the mean end-to-end latency — the quantity plotted in
// Fig. 15 and Fig. 17. Categories are returned in deterministic
// (alphabetical) order.
func (a *AveragePath) Percentages() ([]string, []float64) {
	cats := make([]string, 0, len(a.Components))
	for c := range a.Components {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	vals := make([]float64, len(cats))
	if a.MeanLatency <= 0 {
		return cats, vals
	}
	for i, c := range cats {
		vals[i] = 100 * float64(a.Components[c]) / float64(a.MeanLatency)
	}
	return cats, vals
}

// Percent returns one category's latency percentage.
func (a *AveragePath) Percent(category string) float64 {
	if a.MeanLatency <= 0 {
		return 0
	}
	return 100 * float64(a.Components[category]) / float64(a.MeanLatency)
}

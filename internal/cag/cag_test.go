package cag

import (
	"strings"
	"testing"
	"time"

	"repro/internal/activity"
)

// buildThreeTier constructs the canonical RUBiS-like causal path of Fig. 1
// with explicit timestamps (in ms, relative to base):
//
//	BEGIN(httpd) -c-> SEND(httpd->java) -m-> RECV(java) -c-> SEND(java->mysqld)
//	-m-> RECV(mysqld) -c-> SEND(mysqld->java) -m-> RECV(java) -c->
//	SEND(java->httpd) -m-> RECV(httpd) -c-> END(httpd)
func buildThreeTier(t *testing.T, base time.Duration, pidSalt int) *Graph {
	t.Helper()
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: 100 + pidSalt, TID: 100 + pidSalt}
	java := activity.Context{Host: "app1", Program: "java", PID: 200, TID: 300 + pidSalt}
	mysql := activity.Context{Host: "db1", Program: "mysqld", PID: 400, TID: 500 + pidSalt}

	clientCh := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.9", Port: 4000 + pidSalt}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 80}}
	webApp := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.1", Port: 34000 + pidSalt}, Dst: activity.Endpoint{IP: "10.0.0.2", Port: 8009}}
	appDB := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.2", Port: 45000 + pidSalt}, Dst: activity.Endpoint{IP: "10.0.0.3", Port: 3306}}

	at := func(ms int) time.Duration { return base + time.Duration(ms)*time.Millisecond }
	mk := func(typ activity.Type, ts time.Duration, ctx activity.Context, ch activity.Channel) *Vertex {
		return &Vertex{Type: typ, Timestamp: ts, Ctx: ctx, Chan: ch, Size: 100,
			Records: []*activity.Activity{{Type: typ, Timestamp: ts, Ctx: ctx, Chan: ch, Size: 100, ReqID: int64(pidSalt), MsgID: -1}}}
	}

	g := New(mk(activity.Begin, at(0), httpd, clientCh))
	add := func(v *Vertex, kind EdgeKind, parent *Vertex) *Vertex {
		if err := g.AddVertex(v, kind, parent); err != nil {
			t.Fatalf("AddVertex: %v", err)
		}
		return v
	}
	s1 := add(mk(activity.Send, at(3), httpd, webApp), ContextEdge, g.Root())
	r1 := add(mk(activity.Receive, at(10), java, webApp), MessageEdge, s1)
	s2 := add(mk(activity.Send, at(20), java, appDB), ContextEdge, r1)
	r2 := add(mk(activity.Receive, at(24), mysql, appDB), MessageEdge, s2)
	s3 := add(mk(activity.Send, at(32), mysql, appDB.Reverse()), ContextEdge, r2)
	r3 := add(mk(activity.Receive, at(36), java, appDB.Reverse()), MessageEdge, s3)
	if err := g.AddEdge(ContextEdge, s2, r3); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	s4 := add(mk(activity.Send, at(44), java, webApp.Reverse()), ContextEdge, r3)
	r4 := add(mk(activity.Receive, at(50), httpd, webApp.Reverse()), MessageEdge, s4)
	if err := g.AddEdge(ContextEdge, s1, r4); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	add(mk(activity.End, at(52), httpd, clientCh.Reverse()), ContextEdge, r4)
	if err := g.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return g
}

func TestGraphConstructionAndValidate(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.Len() != 10 {
		t.Fatalf("Len = %d, want 10", g.Len())
	}
	if !g.Finished() {
		t.Fatal("graph should be finished")
	}
	if g.End().Type != activity.End {
		t.Fatalf("End vertex type = %v", g.End().Type)
	}
}

func TestLatency(t *testing.T) {
	g := buildThreeTier(t, time.Second, 1)
	if got := g.Latency(); got != 52*time.Millisecond {
		t.Fatalf("Latency = %v, want 52ms", got)
	}
}

func TestOnlyReceiveMayHaveTwoParents(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	// Try to give the END vertex (already has ctx parent) a message parent.
	err := g.AddEdge(MessageEdge, g.Vertex(1), g.End())
	if err == nil {
		t.Fatal("expected error adding second parent to non-RECEIVE")
	}
}

func TestDuplicateParentKindRejected(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	r4 := g.Vertex(8) // final RECEIVE, already has both parents
	if r4.Parents() != 2 {
		t.Fatalf("test setup: vertex 8 has %d parents", r4.Parents())
	}
	if err := g.AddEdge(ContextEdge, g.Root(), r4); err == nil {
		t.Fatal("expected ErrTooManyParent")
	}
}

func TestForeignParentRejected(t *testing.T) {
	g1 := buildThreeTier(t, 0, 1)
	g2 := buildThreeTier(t, 0, 2)
	v := &Vertex{Type: activity.Send, Ctx: g1.Root().Ctx}
	if err := g2.AddVertex(v, ContextEdge, g1.Root()); err == nil {
		t.Fatal("expected ErrForeignVertex")
	}
}

func TestContainsDistinguishesGraphs(t *testing.T) {
	g1 := buildThreeTier(t, 0, 1)
	g2 := buildThreeTier(t, 0, 2)
	if !g1.Contains(g1.Vertex(3)) {
		t.Fatal("Contains(own vertex) = false")
	}
	if g1.Contains(g2.Vertex(3)) {
		t.Fatal("Contains(other graph's vertex) = true")
	}
	if g1.Contains(nil) {
		t.Fatal("Contains(nil) = true")
	}
}

func TestFinishTwiceFails(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	if err := g.Finish(); err == nil {
		t.Fatal("second Finish should fail")
	}
}

func TestAddAfterFinishFails(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	v := &Vertex{Type: activity.Send, Ctx: g.Root().Ctx}
	if err := g.AddVertex(v, ContextEdge, g.Root()); err == nil {
		t.Fatal("AddVertex after Finish should fail")
	}
}

func TestSignatureIsomorphism(t *testing.T) {
	// Same shape, different base times, PIDs, TIDs and ports => isomorphic.
	g1 := buildThreeTier(t, 0, 1)
	g2 := buildThreeTier(t, 5*time.Second, 77)
	if !Isomorphic(g1, g2) {
		t.Fatalf("expected isomorphic:\n%s\nvs\n%s", Signature(g1), Signature(g2))
	}
}

func TestSignatureDistinguishesShapes(t *testing.T) {
	g1 := buildThreeTier(t, 0, 1)
	// A one-tier static request: BEGIN -> END.
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: 1, TID: 1}
	ch := activity.Channel{Src: activity.Endpoint{IP: "10.0.0.9", Port: 4000}, Dst: activity.Endpoint{IP: "10.0.0.1", Port: 80}}
	g2 := New(&Vertex{Type: activity.Begin, Ctx: httpd, Chan: ch})
	if err := g2.AddVertex(&Vertex{Type: activity.End, Timestamp: time.Millisecond, Ctx: httpd, Chan: ch.Reverse()}, ContextEdge, g2.Root()); err != nil {
		t.Fatal(err)
	}
	if err := g2.Finish(); err != nil {
		t.Fatal(err)
	}
	if Isomorphic(g1, g2) {
		t.Fatal("different shapes must not be isomorphic")
	}
}

func TestCriticalPathTelescopes(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	segs := Breakdown(g)
	var sum time.Duration
	for _, s := range segs {
		sum += s.Latency
	}
	if sum != g.Latency() {
		t.Fatalf("breakdown sums to %v, want %v", sum, g.Latency())
	}
	if len(segs) != 9 {
		t.Fatalf("got %d segments, want 9", len(segs))
	}
}

func TestBreakdownCategories(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	lat := ComponentLatencies(g)
	want := map[string]time.Duration{
		"httpd2httpd":   5 * time.Millisecond,  // 3ms BEGIN->SEND + 2ms RECV->END
		"httpd2java":    7 * time.Millisecond,  // 10-3
		"java2java":     18 * time.Millisecond, // (20-10)+(44-36)
		"java2mysqld":   4 * time.Millisecond,
		"mysqld2mysqld": 8 * time.Millisecond,
		"mysqld2java":   4 * time.Millisecond,
		"java2httpd":    6 * time.Millisecond,
	}
	for cat, d := range want {
		if lat[cat] != d {
			t.Errorf("%s = %v, want %v", cat, lat[cat], d)
		}
	}
	if len(lat) != len(want) {
		t.Errorf("got %d categories %v, want %d", len(lat), lat, len(want))
	}
}

func TestCriticalPathVisitsAllTiers(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	path := CriticalPath(g)
	if len(path) != 10 {
		t.Fatalf("path length = %d, want 10 (all vertices on chain)", len(path))
	}
	if path[0] != g.Root() || path[len(path)-1] != g.End() {
		t.Fatal("path must run root..end")
	}
}

func TestAggregate(t *testing.T) {
	g1 := buildThreeTier(t, 0, 1)
	g2 := buildThreeTier(t, time.Second, 2)
	avg, err := Aggregate([]*Graph{g1, g2})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Count != 2 {
		t.Fatalf("Count = %d", avg.Count)
	}
	if avg.MeanLatency != 52*time.Millisecond {
		t.Fatalf("MeanLatency = %v, want 52ms", avg.MeanLatency)
	}
	if avg.Components["mysqld2mysqld"] != 8*time.Millisecond {
		t.Fatalf("mysqld2mysqld = %v", avg.Components["mysqld2mysqld"])
	}
}

func TestAggregateRejectsMixedPatterns(t *testing.T) {
	g1 := buildThreeTier(t, 0, 1)
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: 1, TID: 1}
	ch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 1}, Dst: activity.Endpoint{IP: "s", Port: 80}}
	g2 := New(&Vertex{Type: activity.Begin, Ctx: httpd, Chan: ch})
	if err := g2.AddVertex(&Vertex{Type: activity.End, Ctx: httpd, Chan: ch.Reverse()}, ContextEdge, g2.Root()); err != nil {
		t.Fatal(err)
	}
	if err := g2.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := Aggregate([]*Graph{g1, g2}); err == nil {
		t.Fatal("expected error aggregating mixed patterns")
	}
}

func TestAggregateEmpty(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Fatal("expected error for empty aggregate")
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	avg, err := Aggregate([]*Graph{g})
	if err != nil {
		t.Fatal(err)
	}
	_, vals := avg.Percentages()
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("percentages sum to %f, want 100", sum)
	}
	if p := avg.Percent("java2java"); p < 34 || p > 35 { // 18/52
		t.Fatalf("java2java percent = %f", p)
	}
}

func TestClassify(t *testing.T) {
	graphs := []*Graph{
		buildThreeTier(t, 0, 1),
		buildThreeTier(t, time.Second, 2),
		buildThreeTier(t, 2*time.Second, 3),
	}
	// One singleton with a different shape.
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: 1, TID: 1}
	ch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 1}, Dst: activity.Endpoint{IP: "s", Port: 80}}
	g := New(&Vertex{Type: activity.Begin, Ctx: httpd, Chan: ch})
	if err := g.AddVertex(&Vertex{Type: activity.End, Ctx: httpd, Chan: ch.Reverse()}, ContextEdge, g.Root()); err != nil {
		t.Fatal(err)
	}
	if err := g.Finish(); err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g)

	patterns := Classify(graphs)
	if len(patterns) != 2 {
		t.Fatalf("got %d patterns, want 2", len(patterns))
	}
	if patterns[0].Count() != 3 || patterns[1].Count() != 1 {
		t.Fatalf("pattern sizes = %d,%d", patterns[0].Count(), patterns[1].Count())
	}
	if patterns[0].Name != "httpd>java>mysqld>java>httpd" {
		t.Fatalf("pattern name = %q", patterns[0].Name)
	}
}

func TestDumpShowsEdges(t *testing.T) {
	g := buildThreeTier(t, 0, 1)
	d := Dump(g)
	if !strings.Contains(d, "BEGIN") || !strings.Contains(d, "m<-") || !strings.Contains(d, "c<-") {
		t.Fatalf("dump missing expected markers:\n%s", d)
	}
}

func TestRequestAndRecordIDs(t *testing.T) {
	g := buildThreeTier(t, 0, 7)
	ids := g.RequestIDs()
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("RequestIDs = %v, want [7]", ids)
	}
	if got := len(g.RecordIDs()); got != 10 {
		t.Fatalf("RecordIDs count = %d, want 10", got)
	}
}

func TestValidateCatchesCrossContextEdge(t *testing.T) {
	httpd := activity.Context{Host: "web1", Program: "httpd", PID: 1, TID: 1}
	other := activity.Context{Host: "web1", Program: "httpd", PID: 2, TID: 2}
	ch := activity.Channel{Src: activity.Endpoint{IP: "c", Port: 1}, Dst: activity.Endpoint{IP: "s", Port: 80}}
	g := New(&Vertex{Type: activity.Begin, Ctx: httpd, Chan: ch})
	// Context edge to a vertex in a different context is invalid.
	if err := g.AddVertex(&Vertex{Type: activity.End, Ctx: other, Chan: ch}, ContextEdge, g.Root()); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should reject cross-context ctx edge")
	}
}

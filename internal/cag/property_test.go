package cag

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/activity"
)

// randomChain builds a random-length valid request/reply chain across a
// random number of tiers and returns it. Constructed graphs must always
// validate, telescope, and classify consistently.
func randomChain(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	tiers := 1 + rng.Intn(4)
	ctxs := make([]activity.Context, tiers)
	for i := range ctxs {
		ctxs[i] = activity.Context{
			Host:    string(rune('a' + i)),
			Program: "p" + string(rune('0'+i)),
			PID:     1 + rng.Intn(5),
			TID:     1 + rng.Intn(50),
		}
	}
	chans := make([]activity.Channel, tiers)
	for i := range chans {
		chans[i] = activity.Channel{
			Src: activity.Endpoint{IP: string(rune('a' + i)), Port: 1000 + rng.Intn(50000)},
			Dst: activity.Endpoint{IP: string(rune('a'+i)) + "x", Port: 80},
		}
	}
	ts := time.Duration(rng.Intn(1000)) * time.Millisecond
	next := func() time.Duration {
		ts += time.Duration(1+rng.Intn(5000)) * time.Microsecond
		return ts
	}

	g := New(&Vertex{Type: activity.Begin, Timestamp: next(), Ctx: ctxs[0], Chan: chans[0]})
	last := make([]*Vertex, tiers) // last vertex per tier context
	last[0] = g.Root()

	// Descend.
	for i := 0; i+1 < tiers; i++ {
		s := &Vertex{Type: activity.Send, Timestamp: next(), Ctx: ctxs[i], Chan: chans[i+1]}
		if err := g.AddVertex(s, ContextEdge, last[i]); err != nil {
			panic(err)
		}
		last[i] = s
		r := &Vertex{Type: activity.Receive, Timestamp: next(), Ctx: ctxs[i+1], Chan: chans[i+1]}
		if err := g.AddVertex(r, MessageEdge, s); err != nil {
			panic(err)
		}
		last[i+1] = r
	}
	// Ascend.
	for i := tiers - 1; i > 0; i-- {
		s := &Vertex{Type: activity.Send, Timestamp: next(), Ctx: ctxs[i], Chan: chans[i].Reverse()}
		if err := g.AddVertex(s, ContextEdge, last[i]); err != nil {
			panic(err)
		}
		r := &Vertex{Type: activity.Receive, Timestamp: next(), Ctx: ctxs[i-1], Chan: chans[i].Reverse()}
		if err := g.AddVertex(r, MessageEdge, s); err != nil {
			panic(err)
		}
		if err := g.AddEdge(ContextEdge, last[i-1], r); err != nil {
			panic(err)
		}
		last[i-1] = r
	}
	end := &Vertex{Type: activity.End, Timestamp: next(), Ctx: ctxs[0], Chan: chans[0].Reverse()}
	if err := g.AddVertex(end, ContextEdge, last[0]); err != nil {
		panic(err)
	}
	if err := g.Finish(); err != nil {
		panic(err)
	}
	return g
}

// Property: every constructed chain validates and its breakdown telescopes
// exactly to the end-to-end latency.
func TestPropertyChainValidatesAndTelescopes(t *testing.T) {
	f := func(seed int64) bool {
		g := randomChain(seed)
		if err := g.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		var sum time.Duration
		for _, seg := range Breakdown(g) {
			sum += seg.Latency
		}
		return sum == g.Latency()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: signatures are invariant under PID/TID/port renaming and
// timestamp shifts (the definition of a causal path pattern), and two
// different seeds with the same tier count are isomorphic.
func TestPropertySignatureInvariance(t *testing.T) {
	f := func(seed int64) bool {
		g1 := randomChain(seed)
		g2 := randomChain(seed + 1_000_000) // different ids/timestamps
		// Only compare when the tier counts match (same chain shape).
		if countHosts(g1) != countHosts(g2) {
			return true
		}
		return Isomorphic(g1, g2) == (Signature(g1) == Signature(g2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func countHosts(g *Graph) int {
	seen := map[string]bool{}
	for _, v := range g.Vertices() {
		seen[v.Ctx.Host] = true
	}
	return len(seen)
}

// Property: the critical path of a chain visits every vertex exactly once.
func TestPropertyCriticalPathCoversChain(t *testing.T) {
	f := func(seed int64) bool {
		g := randomChain(seed)
		path := CriticalPath(g)
		if len(path) != g.Len() {
			return false
		}
		seen := map[*Vertex]bool{}
		for _, v := range path {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return path[0] == g.Root() && path[len(path)-1] == g.End()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package cag implements the Component Activity Graph abstraction of §3.2:
// a directed acyclic graph whose vertices are activities and whose edges are
// the two happened-before relations the paper defines — the adjacent context
// relation (x ⟶c y: x happened right before y in the same execution entity)
// and the message relation (x ⟶m y: the SEND of a message happened right
// before its RECEIVE).
//
// The package also provides what the paper builds on top of CAGs: causal
// path patterns (isomorphism classes, §3.2), aggregation of isomorphic CAGs
// into average causal paths, and the component latency breakdown used for
// performance debugging (§5.4).
package cag

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/activity"
)

// EdgeKind distinguishes the two relations of §3.2.
type EdgeKind uint8

// Edge kinds.
const (
	ContextEdge EdgeKind = iota + 1 // adjacent context relation, x ⟶c y
	MessageEdge                     // message relation, x ⟶m y
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case ContextEdge:
		return "ctx"
	case MessageEdge:
		return "msg"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Vertex is one activity in a CAG. A vertex may aggregate several raw
// TCP_TRACE records when the engine merges consecutive SEND segments or
// counts down multi-segment RECEIVEs (§4.2, Fig. 4); Records holds all of
// them in log order.
type Vertex struct {
	Type      activity.Type
	Timestamp time.Duration // representative node-local time (see engine)
	Ctx       activity.Context
	Chan      activity.Channel
	Size      int64 // total message bytes after merging

	// Records are the underlying raw activities, in the order the engine
	// consumed them.
	Records []*activity.Activity

	ctxParent *Vertex
	msgParent *Vertex
	children  []childEdge

	index int // position within the owning graph's vertex slice

	// rec0 and child0 are inline backing storage for the common case —
	// nearly every vertex holds exactly one raw record and at most two
	// out-edges, so NewVertex and link can avoid a per-vertex slice
	// allocation. Appends beyond the inline capacity reallocate normally.
	rec0   [1]*activity.Activity
	child0 [2]childEdge
}

// NewVertex returns a vertex representing a single raw record, with
// Records backed by the vertex itself (no separate slice allocation).
func NewVertex(a *activity.Activity) *Vertex {
	v := &Vertex{
		Type:      a.Type,
		Timestamp: a.Timestamp,
		Ctx:       a.Ctx,
		Chan:      a.Chan,
		Size:      a.Size,
	}
	v.rec0[0] = a
	v.Records = v.rec0[:1]
	return v
}

type childEdge struct {
	kind EdgeKind
	to   *Vertex
}

// CtxParent returns the parent via the adjacent context relation, or nil.
func (v *Vertex) CtxParent() *Vertex { return v.ctxParent }

// MsgParent returns the parent via the message relation, or nil.
func (v *Vertex) MsgParent() *Vertex { return v.msgParent }

// Index returns the vertex's insertion position in its graph.
func (v *Vertex) Index() int { return v.index }

// Parents returns the number of parents (0, 1 or 2).
func (v *Vertex) Parents() int {
	n := 0
	if v.ctxParent != nil {
		n++
	}
	if v.msgParent != nil {
		n++
	}
	return n
}

// Children returns the out-neighbours with their edge kinds, in insertion
// order. The returned slices are fresh copies.
func (v *Vertex) Children() (kinds []EdgeKind, vertices []*Vertex) {
	kinds = make([]EdgeKind, len(v.children))
	vertices = make([]*Vertex, len(v.children))
	for i, e := range v.children {
		kinds[i] = e.kind
		vertices[i] = e.to
	}
	return kinds, vertices
}

// String implements fmt.Stringer.
func (v *Vertex) String() string {
	return fmt.Sprintf("%s@%v %s", v.Type, v.Timestamp, v.Ctx)
}

// Graph is one component activity graph: the causal path of one request.
type Graph struct {
	vertices []*Vertex
	finished bool
	end      *Vertex

	// forcedSeal / lateLink record the streaming engine's provenance for
	// this graph: whether its component was sealed by an activity-time
	// horizon rather than host closure, and whether a straggler
	// late-linked off it (either way the graph may be a split fragment
	// of its request). Set once by the emitter; exported sinks surface
	// them (the OTLP exporter maps them to span events).
	forcedSeal bool
	lateLink   bool
}

// SetProvenance records the emitting component's seal provenance; see
// Provenance.
func (g *Graph) SetProvenance(forced, late bool) {
	g.forcedSeal = forced
	g.lateLink = late
}

// Provenance reports whether the graph's component was force-sealed by
// a horizon (forced) and whether a late link detached off it (late).
// Both false for close-driven output.
func (g *Graph) Provenance() (forced, late bool) { return g.forcedSeal, g.lateLink }

// Errors reported by graph mutation.
var (
	ErrFinished      = errors.New("cag: graph already finished")
	ErrTooManyParent = errors.New("cag: vertex already has that parent kind")
	ErrNotReceive    = errors.New("cag: only a RECEIVE vertex may have two parents")
	ErrForeignVertex = errors.New("cag: parent vertex belongs to a different graph")
	ErrEmpty         = errors.New("cag: graph has no vertices")
)

// New creates a CAG rooted at the given BEGIN vertex.
func New(root *Vertex) *Graph {
	g := &Graph{}
	root.index = 0
	// Typical request graphs run a dozen-plus vertices; starting at a
	// useful capacity skips the first few append growth steps.
	g.vertices = make([]*Vertex, 1, 8)
	g.vertices[0] = root
	return g
}

// Root returns the first vertex (the BEGIN activity).
func (g *Graph) Root() *Vertex {
	if len(g.vertices) == 0 {
		return nil
	}
	return g.vertices[0]
}

// End returns the END vertex once the graph is finished, else nil.
func (g *Graph) End() *Vertex { return g.end }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.vertices) }

// Vertices returns the vertices in insertion (causal discovery) order.
// The returned slice is a copy.
func (g *Graph) Vertices() []*Vertex {
	out := make([]*Vertex, len(g.vertices))
	copy(out, g.vertices)
	return out
}

// Vertex returns the i-th vertex in insertion order.
func (g *Graph) Vertex(i int) *Vertex { return g.vertices[i] }

// Finished reports whether the END activity has been attached.
func (g *Graph) Finished() bool { return g.finished }

// Contains reports whether v belongs to this graph. The engine's
// thread-reuse check (§4.2 lines 29–32) relies on this.
func (g *Graph) Contains(v *Vertex) bool {
	return v != nil && v.index >= 0 && v.index < len(g.vertices) && g.vertices[v.index] == v
}

// AddVertex appends v with an edge of the given kind from parent, which
// must already belong to this graph. When kind is MessageEdge the new
// vertex's message parent is set; context edges set the context parent.
func (g *Graph) AddVertex(v *Vertex, kind EdgeKind, parent *Vertex) error {
	if g.finished {
		return ErrFinished
	}
	if !g.Contains(parent) {
		return ErrForeignVertex
	}
	v.index = len(g.vertices)
	g.vertices = append(g.vertices, v)
	return g.link(kind, parent, v)
}

// AddEdge adds an extra edge between two vertices already in the graph —
// used for the second (context) parent of a RECEIVE that already has a
// message parent.
func (g *Graph) AddEdge(kind EdgeKind, parent, child *Vertex) error {
	if !g.Contains(parent) || !g.Contains(child) {
		return ErrForeignVertex
	}
	if child.Parents() >= 1 && child.Type != activity.Receive {
		return ErrNotReceive
	}
	return g.link(kind, parent, child)
}

func (g *Graph) link(kind EdgeKind, parent, child *Vertex) error {
	switch kind {
	case ContextEdge:
		if child.ctxParent != nil {
			return ErrTooManyParent
		}
		child.ctxParent = parent
	case MessageEdge:
		if child.msgParent != nil {
			return ErrTooManyParent
		}
		child.msgParent = parent
	default:
		return fmt.Errorf("cag: unknown edge kind %v", kind)
	}
	if parent.children == nil {
		parent.children = parent.child0[:0]
	}
	parent.children = append(parent.children, childEdge{kind: kind, to: child})
	return nil
}

// Finish marks the graph complete. The last added vertex should be the END
// activity; it is remembered for latency computation.
func (g *Graph) Finish() error {
	if g.finished {
		return ErrFinished
	}
	if len(g.vertices) == 0 {
		return ErrEmpty
	}
	g.finished = true
	g.end = g.vertices[len(g.vertices)-1]
	return nil
}

// Latency returns the end-to-end service time t(END) − t(BEGIN). Both
// timestamps come from the same (first-tier) node, so the value is accurate
// regardless of clock skew — the property §3.2 points out for same-node
// intervals.
func (g *Graph) Latency() time.Duration {
	if g.end == nil || len(g.vertices) == 0 {
		return 0
	}
	return g.end.Timestamp - g.vertices[0].Timestamp
}

// Validate checks the structural invariants of §3.2: exactly one root (the
// BEGIN vertex, index 0), every other vertex has at least one parent, no
// vertex has more than two parents, and only RECEIVE vertices have two —
// one context parent and one message parent. Parent indices always precede
// child indices, which also proves acyclicity for insertion-ordered graphs.
func (g *Graph) Validate() error {
	if len(g.vertices) == 0 {
		return ErrEmpty
	}
	for i, v := range g.vertices {
		if v.index != i {
			return fmt.Errorf("cag: vertex %d has index %d", i, v.index)
		}
		switch {
		case i == 0:
			if v.Parents() != 0 {
				return fmt.Errorf("cag: root has %d parents", v.Parents())
			}
			if v.Type != activity.Begin {
				return fmt.Errorf("cag: root type is %v, want BEGIN", v.Type)
			}
		default:
			if v.Parents() == 0 {
				return fmt.Errorf("cag: vertex %d (%v) has no parents", i, v)
			}
		}
		if v.Parents() == 2 && v.Type != activity.Receive {
			return fmt.Errorf("cag: vertex %d (%v) has two parents but is not RECEIVE", i, v)
		}
		if v.ctxParent != nil && v.ctxParent.index >= i {
			return fmt.Errorf("cag: vertex %d context parent %d does not precede it", i, v.ctxParent.index)
		}
		if v.msgParent != nil && v.msgParent.index >= i {
			return fmt.Errorf("cag: vertex %d message parent %d does not precede it", i, v.msgParent.index)
		}
		if v.ctxParent != nil && v.ctxParent.Ctx != v.Ctx {
			return fmt.Errorf("cag: context edge %d->%d crosses contexts", v.ctxParent.index, i)
		}
		if v.ctxParent != nil && v.Timestamp < v.ctxParent.Timestamp {
			return fmt.Errorf("cag: context edge %d->%d goes back in local time", v.ctxParent.index, i)
		}
	}
	return nil
}

// RequestIDs returns the distinct ground-truth request IDs present among
// the underlying records (ignoring -1). Used only by accuracy checking.
func (g *Graph) RequestIDs() []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, v := range g.vertices {
		for _, r := range v.Records {
			if r.ReqID < 0 || seen[r.ReqID] {
				continue
			}
			seen[r.ReqID] = true
			out = append(out, r.ReqID)
		}
	}
	return out
}

// RecordIDs returns the IDs of every underlying raw record in the graph.
func (g *Graph) RecordIDs() []int64 {
	var out []int64
	for _, v := range g.vertices {
		for _, r := range v.Records {
			out = append(out, r.ID)
		}
	}
	return out
}

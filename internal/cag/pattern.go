package cag

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Signature returns a canonical string identifying the graph's causal path
// pattern. Per §3.2, "each causal path pattern is composed of a series of
// isomorphic CAGs, where similar vertices represent activities of the same
// type with the same context information". Context information is compared
// at (host, program) granularity: PIDs and TIDs differ between requests of
// the same pattern (different pool entities serve them), but the tier and
// component do not.
//
// The signature encodes, per vertex in insertion order: the activity type,
// host, program, and the indices and kinds of its parents. Because the
// engine discovers vertices in causal order, two CAGs of the same request
// shape produce identical signatures, and any structural difference (extra
// DB query, different tier, missing edge) changes the signature.
func Signature(g *Graph) string {
	var b strings.Builder
	b.Grow(g.Len() * 24)
	for i, v := range g.vertices {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.Type.String())
		b.WriteByte(':')
		b.WriteString(v.Ctx.Host)
		b.WriteByte('/')
		b.WriteString(v.Ctx.Program)
		if v.ctxParent != nil {
			b.WriteString(":c")
			b.WriteString(strconv.Itoa(v.ctxParent.index))
		}
		if v.msgParent != nil {
			b.WriteString(":m")
			b.WriteString(strconv.Itoa(v.msgParent.index))
		}
	}
	return b.String()
}

// PatternName produces a short human-readable label for a pattern, listing
// the programs visited along the critical path, e.g.
// "httpd>java>mysqld>java>mysqld>java>httpd". Isomorphic graphs share a
// name, but the name is lossier than the signature.
func PatternName(g *Graph) string {
	path := CriticalPath(g)
	var progs []string
	for _, v := range path {
		p := v.Ctx.Program
		if n := len(progs); n == 0 || progs[n-1] != p {
			progs = append(progs, p)
		}
	}
	if len(progs) == 0 {
		return "(empty)"
	}
	return strings.Join(progs, ">")
}

// Pattern is one isomorphism class of CAGs with its members.
type Pattern struct {
	Signature string
	Name      string
	Graphs    []*Graph
}

// Count returns the number of member CAGs.
func (p *Pattern) Count() int { return len(p.Graphs) }

// Classify groups CAGs into causal path patterns by signature. Patterns are
// returned most-frequent first (ties broken by signature for determinism).
func Classify(graphs []*Graph) []*Pattern {
	bySig := make(map[string]*Pattern)
	for _, g := range graphs {
		sig := Signature(g)
		p := bySig[sig]
		if p == nil {
			p = &Pattern{Signature: sig, Name: PatternName(g)}
			bySig[sig] = p
		}
		p.Graphs = append(p.Graphs, g)
	}
	out := make([]*Pattern, 0, len(bySig))
	for _, p := range bySig {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Graphs) != len(out[j].Graphs) {
			return len(out[i].Graphs) > len(out[j].Graphs)
		}
		return out[i].Signature < out[j].Signature
	})
	return out
}

// Isomorphic reports whether two CAGs belong to the same causal path
// pattern.
func Isomorphic(a, b *Graph) bool { return Signature(a) == Signature(b) }

// Dump renders the graph as an indented textual tree for debugging and the
// CLI. Vertices appear in insertion order with their parent links.
func Dump(g *Graph) string {
	var b strings.Builder
	for i, v := range g.vertices {
		fmt.Fprintf(&b, "%3d %-7s t=%-12s %s", i, v.Type, v.Timestamp, v.Ctx)
		if v.ctxParent != nil {
			fmt.Fprintf(&b, " c<-%d", v.ctxParent.index)
		}
		if v.msgParent != nil {
			fmt.Fprintf(&b, " m<-%d", v.msgParent.index)
		}
		if v.Size > 0 {
			fmt.Fprintf(&b, " %dB", v.Size)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Noise tolerance (§4.3, §5.3.3): keep 100% accuracy while rlogin, ssh and
// a MySQL client pollute the traced nodes.
//
// ssh/rlogin traffic is removed by the attribute filter (program name); the
// MySQL-client traffic shares the real database's program name and port, so
// only the is_noise check can discard it.
//
// Run with: go run ./examples/noise
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/ranker"
	"repro/internal/rubis"
)

func main() {
	cfg := rubis.DefaultConfig(200)
	cfg.Scale = 0.03
	cfg.Noise = true
	res, err := rubis.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d activities, of which %d are noise\n",
		len(res.Trace), res.NoiseActivities)

	run := func(label string, filter ranker.Filter) {
		out, err := core.New(core.Options{
			Window:     2 * time.Millisecond, // the §5.3.3 setting
			EntryPorts: []int{rubis.EntryPort},
			IPToHost:   res.IPToHost,
			Filter:     filter,
		}).CorrelateTrace(res.Trace)
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Truth.Evaluate(out.Graphs)
		fmt.Printf("\n%s:\n", label)
		fmt.Printf("  accuracy:          %.4f (%d/%d correct)\n",
			rep.PathAccuracy(), rep.CorrectPaths, rep.LoggedRequests)
		fmt.Printf("  attribute filter:  %d activities dropped\n", out.Ranker.FilterDropped)
		fmt.Printf("  is_noise:          %d activities dropped\n", out.Ranker.NoiseDropped)
		fmt.Printf("  engine discards:   %d stray noise SENDs\n", out.Engine.DiscardedSends)
		fmt.Printf("  correlation time:  %v\n", out.CorrelationTime.Round(time.Millisecond))
	}

	// Without the attribute filter every noise activity must be handled by
	// is_noise / engine discards.
	run("no attribute filter (is_noise does all the work)", nil)

	// With the paper's filter, ssh/rlogin disappear at fetch time; the
	// MySQL-client noise still reaches is_noise because its attributes are
	// indistinguishable from real database traffic.
	run("with program-name filter for sshd/rlogind", ranker.AttributeFilter{
		DenyPrograms: map[string]bool{"sshd": true, "rlogind": true},
	}.Func())
}

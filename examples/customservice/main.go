// Custom topology: trace a service that is NOT RUBiS.
//
// The paper's algorithm only assumes black-box components exchanging TCP
// messages with one-request-at-a-time execution entities (§2). This example
// declares a four-tier pipeline — edge proxy, auth service, API server,
// key-value store — runs it on the simulated testbed, and shows the
// correlator reconstructing its (different) causal path patterns exactly.
//
// Run with: go run ./examples/customservice
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/testbed"
)

func main() {
	spec := service.Spec{
		Tiers: []service.TierSpec{
			{Program: "edgeproxy", Port: 443, Kind: service.ProcessPerConnection, Cores: 4,
				Demand: 500 * time.Microsecond, PostDemand: 300 * time.Microsecond, Calls: 1,
				RequestSize: 420, ReplySize: 5200},
			{Program: "authsvc", Port: 7001, Kind: service.ThreadPerConnection, PoolSize: 24, Cores: 2,
				Demand: 1200 * time.Microsecond, PostDemand: 400 * time.Microsecond, Calls: 1,
				RequestSize: 380, ReplySize: 900},
			{Program: "apiserver", Port: 7002, Kind: service.ThreadPerConnection, PoolSize: 32, Cores: 4,
				Demand: 2500 * time.Microsecond, PostDemand: 1500 * time.Microsecond, Calls: 3,
				RequestSize: 510, ReplySize: 4100},
			{Program: "kvstore", Port: 7003, Kind: service.ThreadPerConnection, PoolSize: 64, Cores: 2,
				Demand:      800 * time.Microsecond,
				RequestSize: 190, ReplySize: 1300},
		},
		Clients:   40,
		ThinkTime: 300 * time.Millisecond,
		Duration:  8 * time.Second,
		IdleHold:  40 * time.Millisecond,
		Net: testbed.NetConfig{
			Latency: 90 * time.Microsecond, Bandwidth: 125_000_000, // 1 Gbps fabric
			MSS: 1448, RecvChunk: 4096,
		},
		Seed: 42,
	}

	res, err := service.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests, %d activities across %d tiers\n",
		res.Completed, len(res.Trace), len(spec.Tiers))

	out, err := core.New(core.Options{
		Window:     5 * time.Millisecond,
		EntryPorts: []int{res.EntryPort},
		IPToHost:   res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.Truth.Evaluate(out.Graphs)
	fmt.Printf("correlator: %d causal paths, accuracy %.4f\n", len(out.Graphs), rep.PathAccuracy())

	fmt.Println("\ncausal path patterns:")
	for _, p := range cag.Classify(out.Graphs) {
		fmt.Printf("  %-70s x%d\n", p.Name, p.Count())
	}

	report, err := analysis.DominantPattern(out.Graphs, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatency percentages (dominant pattern):\n  %s\n", report)

	fmt.Println("\ncomponent latency distributions:")
	fmt.Print(analysis.HopTable(analysis.HopDistributions(out.Graphs, nil)))
}

// Fault injection (§5.4.2): localise three injected performance problems
// from latency-percentage shifts alone.
//
//	EJB_Delay      — a random delay inside the second tier
//	DataBase_Lock  — the items table is locked; its queries serialise
//	EJB_Network    — the app node's NIC drops from 100 Mbps to 10 Mbps
//
// Run with: go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/rubis"
)

func measure(name string, faults rubis.Faults) *analysis.PatternReport {
	cfg := rubis.DefaultConfig(300)
	cfg.Mix = rubis.Default
	cfg.Scale = 0.05
	cfg.Faults = faults
	res, err := rubis.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analysis.DominantPattern(out.Graphs, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s avg RT %v over %d requests of the dominant pattern\n",
		name, rep.MeanLatency.Round(time.Millisecond), rep.Count)
	return rep
}

func main() {
	cases := []struct {
		name   string
		faults rubis.Faults
	}{
		{"normal", rubis.Faults{}},
		{"EJB_Delay", rubis.Faults{EJBDelay: 40 * time.Millisecond}},
		{"DataBase_Lock", rubis.Faults{DBLock: true, DBLockHold: 4 * time.Millisecond}},
		{"EJB_Network", rubis.Faults{AppNetBandwidth: 1_250_000}},
	}
	var reports []*analysis.PatternReport
	var labels []string
	for _, c := range cases {
		reports = append(reports, measure(c.name, c.faults))
		labels = append(labels, c.name)
	}

	fmt.Println("\nlatency percentages (cf. Fig. 17):")
	fmt.Print(analysis.Compare(labels, reports).Table())

	// The EJB_Network fault spreads its damage across several interaction
	// legs, so a finer threshold than the default is appropriate.
	det := analysis.Detector{ThresholdPoints: 5}
	for i := 1; i < len(reports); i++ {
		fmt.Printf("\nautomated diagnosis for %s:\n", labels[i])
		fmt.Print(analysis.Summary(det.Diagnose(reports[0], reports[i])))
	}
}

// Live monitoring: stream CAGs into an online detector and catch a fault
// the moment its latency signature appears — the production deployment mode
// the paper's conclusion motivates.
//
// The example runs a healthy RUBiS session followed by one with a database
// lock; CAGs stream straight from the correlator into the monitor, which
// learns a per-pattern baseline from the healthy interval and then raises
// alerts naming the suspect component.
//
// Run with: go run ./examples/livemonitor
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/rubis"
)

func main() {
	monitor := live.NewMonitor(live.Config{
		Interval:          2 * time.Second,
		BaselineIntervals: 2,
		MinRequests:       10,
		Detector:          analysis.Detector{ThresholdPoints: 10},
		OnAlert: func(a live.Alert) {
			fmt.Printf("ALERT %s\n", a)
		},
	})

	var shift time.Duration
	stream := func(label string, faults rubis.Faults) {
		cfg := rubis.DefaultConfig(200)
		cfg.Scale = 0.02
		cfg.Faults = faults
		res, err := rubis.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		count := 0
		// OnGraph streams each finished CAG as the correlator emits it —
		// the engine never accumulates, the monitor sees requests "live".
		_, err = core.New(core.Options{
			Window:     10 * time.Millisecond,
			EntryPorts: []int{rubis.EntryPort},
			IPToHost:   res.IPToHost,
			OnGraph: func(g *cag.Graph) {
				// Each run's virtual clock restarts; shift to keep the
				// monitor's wall time monotone across runs.
				for _, v := range g.Vertices() {
					v.Timestamp += shift
				}
				monitor.Ingest(g)
				count++
			},
		}).CorrelateTrace(res.Trace)
		if err != nil {
			log.Fatal(err)
		}
		shift += res.Trace[len(res.Trace)-1].Timestamp + time.Second
		fmt.Printf("streamed %5d CAGs from the %s run\n", count, label)
	}

	fmt.Println("phase 1: healthy traffic (monitor learns baselines)...")
	stream("healthy", rubis.Faults{})
	fmt.Println("phase 2: the items table gets locked...")
	stream("faulty", rubis.Faults{DBLock: true, DBLockHold: 4 * time.Millisecond})
	monitor.Flush()

	fmt.Printf("\n%s", monitor.Summary())
}

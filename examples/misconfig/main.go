// Misconfiguration shooting (§5.4.1): find the JBoss MaxThreads bottleneck.
//
// Reproduces the paper's debugging session: throughput degrades as load
// grows while CPU and I/O look healthy; the CAG latency percentages reveal
// that the httpd->JBoss interaction dominates, pointing at the servlet
// thread pool; raising MaxThreads from 40 to 250 fixes it.
//
// Run with: go run ./examples/misconfig
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/rubis"
)

const scale = 0.05

func measure(clients, maxThreads int) (*rubis.Result, *analysis.PatternReport) {
	cfg := rubis.DefaultConfig(clients)
	cfg.Scale = scale
	cfg.MaxThreads = maxThreads
	res, err := rubis.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	out, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: res.IPToHost,
	}).CorrelateTrace(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analysis.DominantPattern(out.Graphs, 3)
	if err != nil {
		log.Fatal(err)
	}
	return res, rep
}

func main() {
	fmt.Println("symptom: load grows but the service degrades (MaxThreads=40):")
	var reports []*analysis.PatternReport
	var labels []string
	for _, n := range []int{500, 700, 900} {
		res, rep := measure(n, 40)
		fmt.Printf("  clients=%4d  throughput=%6.1f req/s  avg RT=%v\n",
			n, res.Metrics.Throughput(), res.Metrics.AvgResponseTime().Round(time.Millisecond))
		reports = append(reports, rep)
		labels = append(labels, fmt.Sprintf("c=%d", n))
	}

	fmt.Println("\nCAG latency percentages of the most frequent pattern:")
	fmt.Print(analysis.Compare(labels, reports).Table())

	fmt.Println("automated diagnosis (healthy c=500 vs degraded c=900):")
	findings := analysis.Detector{}.Diagnose(reports[0], reports[len(reports)-1])
	fmt.Print(analysis.Summary(findings))

	fmt.Println("\nfix: MaxThreads=250 (the paper's remedy):")
	for _, n := range []int{500, 700, 900} {
		res, _ := measure(n, 250)
		fmt.Printf("  clients=%4d  throughput=%6.1f req/s  avg RT=%v\n",
			n, res.Metrics.Throughput(), res.Metrics.AvgResponseTime().Round(time.Millisecond))
	}
}

// Quickstart: trace a small three-tier run end to end.
//
// It simulates a RUBiS-like deployment for a few virtual seconds, feeds the
// collected TCP_TRACE activities to the Correlator, and prints the causal
// path of one request plus the pattern and latency summary — the minimal
// PreciseTracer workflow.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/rubis"
)

func main() {
	// 1. Generate a workload trace (stands in for collecting kernel logs).
	cfg := rubis.DefaultConfig(50)
	cfg.Scale = 0.01 // a ~6 second session
	res, err := rubis.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests completed, %d activities logged\n",
		res.Metrics.TotalCompleted, len(res.Trace))

	// 2. Correlate: activities -> one CAG per request.
	out, err := core.New(core.Options{
		Window:     10 * time.Millisecond,  // §4.1 sliding window
		EntryPorts: []int{rubis.EntryPort}, // §3.1 BEGIN/END classification
		IPToHost:   res.IPToHost,           // traced-node addresses
	}).CorrelateTrace(res.Trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlator: %d causal paths in %v\n",
		len(out.Graphs), out.CorrelationTime.Round(time.Millisecond))

	// 3. Inspect one causal path.
	var sample *cag.Graph
	for _, g := range out.Graphs {
		if g.Len() > 2 { // skip static BEGIN->END paths
			sample = g
			break
		}
	}
	if sample == nil {
		log.Fatal("no dynamic request found")
	}
	fmt.Printf("\none request's causal path (end-to-end %v):\n%s",
		sample.Latency().Round(time.Microsecond), cag.Dump(sample))

	// 4. Patterns and component latencies.
	fmt.Println("causal path patterns:")
	for _, p := range cag.Classify(out.Graphs) {
		fmt.Printf("  %-48s x%d\n", p.Name, p.Count())
	}
	rep, err := analysis.DominantPattern(out.Graphs, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatency percentages of the dominant pattern:\n  %s\n", rep)
}

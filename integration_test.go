package repro_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/activity"
	"repro/internal/analysis"
	"repro/internal/cag"
	"repro/internal/core"
	"repro/internal/groundtruth"
	"repro/internal/live"
	"repro/internal/report"
	"repro/internal/rubis"
)

// TestEndToEndWorkflow walks the full user journey once: generate a
// workload, persist per-host logs, stream-correlate from disk, classify,
// analyse, detect an injected fault, and render the HTML report.
func TestEndToEndWorkflow(t *testing.T) {
	dir := t.TempDir()

	// 1. Healthy run, persisted like a real collection (per-host, gzip).
	cfg := rubis.DefaultConfig(120)
	cfg.Scale = 0.01
	cfg.Noise = true
	cfg.Skew.MaxSkew = 300 * time.Millisecond
	healthy, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := activity.WriteHostLogs(dir, healthy.PerHost, true, true); err != nil {
		t.Fatal(err)
	}

	// 2. Stream-correlate from disk with inferred topology.
	out, err := core.New(core.Options{
		Window:     10 * time.Millisecond,
		EntryPorts: []int{rubis.EntryPort},
	}).CorrelateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	perHost, err := activity.ReadHostLogs(dir)
	if err != nil {
		t.Fatal(err)
	}
	truth := groundtruth.FromTrace(activity.Merge(perHost))
	if rep := truth.Evaluate(out.Graphs); rep.PathAccuracy() != 1.0 {
		t.Fatalf("disk round-trip accuracy: %v", rep)
	}

	// 3. Analysis layer: node clocks are 300ms apart, so detector-grade
	// percentages need the skew estimator first.
	est := analysis.EstimateOffsets(out.Graphs, "web1")
	healthyRep, err := analysis.DominantPatternCorrected(out.Graphs, 3, est)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Faulty run (EJB delay) and automated diagnosis.
	cfg.Faults.EJBDelay = 40 * time.Millisecond
	cfg.Noise = false
	faulty, err := rubis.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fOut, err := core.New(core.Options{
		Window: 10 * time.Millisecond, EntryPorts: []int{rubis.EntryPort}, IPToHost: faulty.IPToHost,
	}).CorrelateTrace(faulty.Trace)
	if err != nil {
		t.Fatal(err)
	}
	fEst := analysis.EstimateOffsets(fOut.Graphs, "web1")
	faultyRep, err := analysis.DominantPatternCorrected(fOut.Graphs, 3, fEst)
	if err != nil {
		t.Fatal(err)
	}
	findings := analysis.Detector{}.Diagnose(healthyRep, faultyRep)
	if len(findings) == 0 || findings[0].Category != "java2java" {
		t.Fatalf("diagnosis failed: %v", findings)
	}

	// 5. HTML report to disk.
	reports, err := analysis.Report(fOut.Graphs)
	if err != nil {
		t.Fatal(err)
	}
	htmlPath := filepath.Join(dir, "report.html")
	f, err := os.Create(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := report.Render(f, report.Build("integration", fOut, reports, findings)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "java2java") {
		t.Fatal("report missing the finding")
	}
}

// TestOnlineWorkflow streams a fault onset through Session + Monitor and
// checks it is caught within the faulty region.
func TestOnlineWorkflow(t *testing.T) {
	mk := func(faults rubis.Faults) *rubis.Result {
		cfg := rubis.DefaultConfig(150)
		cfg.Scale = 0.01
		cfg.Faults = faults
		res, err := rubis.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := mk(rubis.Faults{})
	faulty := mk(rubis.Faults{DBLock: true, DBLockHold: 5 * time.Millisecond})

	monitor := live.NewMonitor(live.Config{
		Interval: 2 * time.Second, BaselineIntervals: 1, MinRequests: 5,
	})
	var shift time.Duration
	stream := func(res *rubis.Result) {
		var hosts []string
		for h := range res.PerHost {
			hosts = append(hosts, h)
		}
		sess, err := core.NewSession(core.Options{
			Window:     10 * time.Millisecond,
			EntryPorts: []int{rubis.EntryPort},
			IPToHost:   res.IPToHost,
			OnGraph: func(g *cag.Graph) {
				for _, v := range g.Vertices() {
					v.Timestamp += shift
				}
				monitor.Ingest(g)
			},
		}, hosts)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range res.Trace {
			if err := sess.Push(a); err != nil {
				t.Fatal(err)
			}
		}
		sess.Close()
		shift += res.Trace[len(res.Trace)-1].Timestamp + time.Second
	}
	stream(healthy)
	stream(faulty)
	monitor.Flush()

	caught := false
	for _, a := range monitor.Stats().Alerts {
		if a.Finding.Category == "mysqld2mysqld" {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("DB lock onset not caught:\n%s", monitor.Summary())
	}
}
